//! Dynamic master/worker — the paper's *dynamicity* story (§3.2.1):
//! a trivially parallel application that (a) loses a worker to a crash and
//! repartitions over the survivors via the view-change upcall, and (b) keeps
//! all its work covered with no duplicates.
//!
//! ```text
//! cargo run --example dynamic_master_worker
//! ```
//!
//! The work is a fixed pool of 240 "tiles" (think Mandelbrot rows). Each
//! alive rank owns the tiles congruent to its position among the survivors;
//! after the crash, the survivors re-derive their share from
//! `ctx.alive_ranks()` — exactly the paper's "changing the number of nodes
//! dynamically simply requires restructuring the computation subspace so
//! that the entire compute space is covered with no duplicates".

use std::collections::BTreeSet;
use std::time::Duration;

use starfish::{CkptValue, Cluster, FtPolicy, Rank, Result, SubmitOpts};

const TILES: usize = 240;
const ROUNDS: usize = 60;

fn main() -> Result<()> {
    let cluster = Cluster::builder().nodes(4).network_bip().build()?;

    cluster.register_app("tiles", |ctx| {
        let me = ctx.rank();
        let state = CkptValue::Unit; // trivially parallel: nothing to save
        let mut done: BTreeSet<i64> = BTreeSet::new();
        let mut view_changes = 0i64;

        for round in 0..ROUNDS {
            ctx.safepoint(&state)?;
            while let Some(notice) = ctx.take_view()? {
                view_changes += 1;
                println!(
                    "[rank {me}] view change #{view_changes}: alive = {:?}",
                    notice.alive
                );
            }
            let alive = ctx.alive_ranks();
            if !alive.contains(&me) {
                break; // we were the casualty (never reached: crashed ranks die)
            }
            let k = alive.iter().position(|r| *r == me).unwrap();
            // Own every tile ≡ k (mod |alive|); compute a few per round.
            let share: Vec<usize> = (0..TILES).filter(|t| t % alive.len() == k).collect();
            let lo = round * share.len() / ROUNDS;
            let hi = (round + 1) * share.len() / ROUNDS;
            for &t in &share[lo..hi] {
                done.insert(t as i64);
            }
            std::thread::sleep(Duration::from_millis(4));
        }
        // Re-cover the whole current share once more so nothing from the
        // pre-crash partition is missing.
        let alive = ctx.alive_ranks();
        if let Some(k) = alive.iter().position(|r| *r == me) {
            for t in (0..TILES).filter(|t| t % alive.len() == k) {
                done.insert(t as i64);
            }
        }
        ctx.publish(CkptValue::record(vec![
            ("tiles", CkptValue::IntArray(done.into_iter().collect())),
            ("view_changes", CkptValue::Int(view_changes)),
        ]));
        Ok(())
    });

    let app = cluster.submit(
        "tiles",
        4,
        SubmitOpts::default().policy(FtPolicy::NotifyView),
    )?;

    // Let the partition settle, then kill the node hosting rank 3.
    std::thread::sleep(Duration::from_millis(120));
    let victim = cluster.config().apps[&app].placement[3];
    println!(">>> crashing node {victim} (hosts rank 3) <<<");
    cluster.crash_node(victim);

    // Survivors: ranks 0..2.
    let mut covered: BTreeSet<i64> = BTreeSet::new();
    for r in 0..3 {
        let out = cluster.wait_outputs(app, Rank(r), 1, Duration::from_secs(60))?;
        let rec = out.last().unwrap();
        let tiles = rec
            .field("tiles")
            .and_then(|f| f.as_int_array())
            .unwrap()
            .to_vec();
        println!("rank {r} computed {} tiles", tiles.len());
        covered.extend(tiles);
    }
    assert_eq!(
        covered.len(),
        TILES,
        "every tile covered despite losing a worker"
    );
    println!("all {TILES} tiles covered after repartitioning over 3 survivors ✓");

    // Dynamic growth too: add a brand-new node and run a second job across 5.
    let new = cluster.add_node(0)?;
    println!("added node {new}; resubmitting over the larger cluster");
    let app2 = cluster.submit(
        "tiles",
        5,
        SubmitOpts::default().policy(FtPolicy::NotifyView),
    )?;
    cluster.wait_app_done(app2, Duration::from_secs(60))?;
    println!("5-rank job finished on the grown cluster ✓");
    Ok(())
}
