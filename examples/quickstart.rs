//! Quickstart: boot a simulated Starfish cluster, run a small MPI program,
//! and read its results.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! What happens underneath: four Starfish daemons form an Ensemble-style
//! process group over the simulated BIP/Myrinet fabric, the submission is
//! replicated through totally ordered multicast, each daemon spawns its
//! local application processes, and the ring + allreduce below run over the
//! fast data path with virtual-time accounting calibrated to the paper's
//! 1999 testbed.

use std::time::Duration;

use starfish::{CkptValue, Cluster, Rank, ReduceOp, SubmitOpts};

fn main() -> starfish::Result<()> {
    // A 4-node cluster of the paper's Pentium-II Linux boxes on BIP/Myrinet.
    let cluster = Cluster::builder().nodes(4).network_bip().build()?;
    println!("cluster up: {cluster:?}");

    cluster.register_app("quickstart", |ctx| {
        let me = ctx.rank();
        let n = ctx.size();

        // Token ring: rank 0 injects, everyone increments and forwards.
        let next = Rank((me.0 + 1) % n);
        let prev = Rank((me.0 + n - 1) % n);
        if me.0 == 0 {
            ctx.send(next, 1, &[0])?;
            let m = ctx.recv(Some(prev), Some(1))?;
            println!(
                "[rank {me}] token came home with value {} at virtual time {}",
                m.data[0],
                ctx.time()
            );
        } else {
            let m = ctx.recv(Some(prev), Some(1))?;
            ctx.send(next, 1, &[m.data[0] + 1])?;
        }

        // A collective: global sum of (rank+1)².
        let x = (me.0 as f64 + 1.0).powi(2);
        let total = ctx.allreduce_f64(&[x], ReduceOp::Sum)?;
        ctx.publish(CkptValue::Float(total[0]));
        Ok(())
    });

    let app = cluster.submit("quickstart", 4, SubmitOpts::default())?;
    cluster.wait_app_done(app, Duration::from_secs(30))?;

    for r in 0..4 {
        let out = cluster.outputs(app, Rank(r));
        println!("rank {r}: sum of squares = {}", out[0]);
    }
    println!("expected: {}", (1..=4).map(|x| (x * x) as f64).sum::<f64>());
    Ok(())
}
