//! Causal tracing end to end: run a checkpointed MPI app under the
//! always-on flight recorder, survive an injected crash, then reconstruct
//! what happened — live over the management protocol (`TRACE ...`), and
//! offline by reassembling the per-process rings into a happens-before
//! DAG and exporting Perfetto JSON for `ui.perfetto.dev`.
//!
//! ```text
//! cargo run --example trace_explorer
//! ```
//!
//! Writes two artifacts next to the manifest root:
//! * `target/trace_explorer.perfetto.json` — load it in the Perfetto UI;
//! * `target/trace_explorer.dump.txt` — the raw flight-recorder rings.
//!
//! The example exits nonzero if the reassembled DAG is inconsistent or the
//! exported JSON fails the schema check, so CI can run it as a gate.

use std::time::Duration;

use starfish::{CkptValue, Cluster, FtPolicy, Rank, ReduceOp, Result, SubmitOpts};
use starfish_trace::{perfetto, reassemble};

const ITERS: i64 = 12;

fn ring_app(ctx: &mut starfish::Ctx<'_>) -> Result<()> {
    let me = ctx.rank();
    let n = ctx.size();
    let mut iter = match ctx.restored() {
        Some(v) => v.field("iter").and_then(|f| f.as_int()).unwrap_or(0),
        None => 0,
    };
    while iter < ITERS {
        let state = CkptValue::record(vec![("iter", CkptValue::Int(iter))]);
        if iter % 4 == 0 && iter > 0 {
            ctx.checkpoint(&state)?;
        } else {
            ctx.safepoint(&state)?;
        }
        // Pass a token around the ring, then agree on the round sum.
        let next = Rank((me.0 + 1) % n);
        ctx.send(next, 1, &iter.to_be_bytes())?;
        let _ = ctx.recv(None, Some(1))?;
        let _ = ctx.allreduce_f64(&[iter as f64], ReduceOp::Sum)?;
        iter += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    ctx.publish(CkptValue::Int(ITERS));
    Ok(())
}

fn say(session: &mut starfish::MgmtSession, line: &str) {
    let resp = session.handle_line(line);
    println!("> {line}");
    for l in resp.lines().take(12) {
        println!("< {l}");
    }
    let extra = resp.lines().count().saturating_sub(12);
    if extra > 0 {
        println!("< ... ({extra} more lines)");
    }
}

fn main() -> Result<()> {
    // The flight recorder is on by default for every rank and daemon.
    let cluster = Cluster::builder().nodes(3).network_bip().build()?;
    cluster.register_app("ring", ring_app);
    let app = cluster.submit("ring", 3, SubmitOpts::default().policy(FtPolicy::Restart))?;

    // Let the app reach its first committed checkpoint, then kill the node
    // hosting rank 1 so the trace records a real fault + recovery.
    let ranks: Vec<Rank> = (0..3).map(Rank).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while cluster.store().latest_common_index(app, &ranks) < 1 {
        assert!(std::time::Instant::now() < deadline, "no checkpoint");
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim = cluster.config().apps[&app].placement[1];
    println!(">>> crashing node {victim} (hosts rank 1) <<<\n");
    cluster.crash_node(victim);
    cluster.wait_app_done(app, Duration::from_secs(120))?;

    // --- live: the management protocol ------------------------------------
    let mut s = cluster.session();
    say(&mut s, "LOGIN USER alice");
    say(&mut s, "TRACE SCOPES");
    say(&mut s, &format!("TRACE TAIL 5 {app}.r0"));
    say(&mut s, &format!("TRACE PATH {app}"));

    // --- offline: reassemble + export --------------------------------------
    let traces = cluster.trace_hub().dump_prefix(&format!("{app}.r"));
    let dag = reassemble(traces.clone());
    dag.check().expect("happens-before DAG must be consistent");
    println!(
        "\nreassembled {} rings: {} events, {} message edges; critical path:",
        traces.len(),
        dag.nodes.len(),
        dag.message_edges
    );
    print!("{}", dag.render_path());

    let json = perfetto::export(&traces);
    perfetto::validate(&json).expect("exported JSON must pass the schema check");

    let root = env!("CARGO_MANIFEST_DIR");
    let json_path = format!("{root}/../../target/trace_explorer.perfetto.json");
    std::fs::write(&json_path, &json).expect("write perfetto artifact");
    let mut dump = String::new();
    for t in &traces {
        dump.push_str(&format!("== {} dropped={}\n", t.scope, t.dropped));
        for e in &t.events {
            dump.push_str(&e.summary());
            dump.push('\n');
        }
    }
    let dump_path = format!("{root}/../../target/trace_explorer.dump.txt");
    std::fs::write(&dump_path, &dump).expect("write dump artifact");
    println!("\nwrote {json_path}");
    println!("wrote {dump_path}");
    println!("\nload the JSON in ui.perfetto.dev to explore the run visually ✓");
    Ok(())
}
