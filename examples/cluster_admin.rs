//! Cluster administration through the ASCII management protocol
//! (paper §3.1.1) — the textual protocol the paper's Java GUI drives.
//!
//! ```text
//! cargo run --example cluster_admin
//! ```
//!
//! Shows a management session (login, node administration, parameters) and
//! a user session (submit / checkpoint / suspend / resume / delete, with
//! ownership enforced).

use std::time::Duration;

use starfish::{CkptValue, Cluster, Result};

fn say(session: &mut starfish::MgmtSession, line: &str) {
    let resp = session.handle_line(line);
    println!("> {line}");
    for l in resp.lines() {
        println!("< {l}");
    }
}

fn main() -> Result<()> {
    let cluster = Cluster::builder().nodes(3).network_tcp().build()?;
    cluster.register_app("soak", |ctx| {
        let state = CkptValue::Unit;
        for _ in 0..2000 {
            ctx.safepoint(&state)?;
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    });

    // --- management connection ---------------------------------------------
    let mut admin = cluster.session();
    say(&mut admin, "HELP"); // works pre-login: how a client discovers LOGIN
    say(&mut admin, "STATUS"); // rejected: not logged in
    say(&mut admin, "LOGIN ADMIN wrong-password"); // rejected
    say(&mut admin, "LOGIN ADMIN starfish");
    say(&mut admin, "NODES");
    say(&mut admin, "SET ckpt_interval 3600");
    say(&mut admin, "ADDNODE 5 1"); // a big-endian SunOS box, Table 2 row 2
    std::thread::sleep(Duration::from_millis(100));
    say(&mut admin, "NODES");
    say(&mut admin, "DISABLE n5");
    say(&mut admin, "ENABLE n5");

    // --- user session --------------------------------------------------------
    let mut alice = cluster.session();
    say(&mut alice, "LOGIN USER alice");
    say(&mut alice, "ADDNODE 9"); // rejected: users cannot administrate
    say(
        &mut alice,
        "SUBMIT soak 2 POLICY restart LEVEL vm PROTO sync",
    );
    std::thread::sleep(Duration::from_millis(100));
    say(&mut alice, "APPS");
    say(&mut alice, "CHECKPOINT app1");
    std::thread::sleep(Duration::from_millis(300));

    // --- live introspection --------------------------------------------------
    // Cluster-wide metrics aggregated from every node over the ordered
    // ensemble path; same login gate as everything else.
    let mut observer = cluster.session();
    say(&mut observer, "STATS"); // rejected: not logged in
    say(&mut observer, "LOGIN USER alice");
    say(&mut observer, "HEALTH");
    say(&mut observer, "TIMELINE"); // rejected: missing argument
    say(&mut observer, "TIMELINE app7"); // unknown app: empty timeline
    say(&mut observer, "TIMELINE app1");
    say(&mut observer, "STATS");

    // --- diskless checkpoint backend ----------------------------------------
    // Per-app store policy (DESIGN.md §6a): this job's images live in peer
    // memory at k=2 instead of the modeled disk; CKPT STATUS shows per-rank
    // fragment placement and replication health. n5 was only *registered*
    // above (no daemon runs there in this in-process harness) — scheduling
    // and the replica ring are gated on daemon self-announce (DESIGN.md §7),
    // so the unannounced n5 stays enabled in NODES yet receives no ranks
    // and holds no fragments.
    say(
        &mut alice,
        "SUBMIT soak 2 POLICY restart LEVEL vm PROTO sync STORE replica:2",
    );
    std::thread::sleep(Duration::from_millis(100));
    say(&mut alice, "CHECKPOINT app2");
    std::thread::sleep(Duration::from_millis(600));
    say(&mut alice, "CKPT STATUS app2");
    say(&mut alice, "CKPT STATUS app1"); // disk-backed job: no fragments
    say(&mut alice, "CKPT STATUS nope"); // unknown app
    say(&mut alice, "DELETE app2");
    std::thread::sleep(Duration::from_millis(100));

    say(&mut alice, "SUSPEND app1");
    std::thread::sleep(Duration::from_millis(100));
    say(&mut alice, "APPS");
    say(&mut alice, "RESUME app1");

    // Ownership: bob cannot touch alice's job.
    let mut bob = cluster.session();
    say(&mut bob, "LOGIN USER bob");
    say(&mut bob, "DELETE app1");

    // --- recovery forensics over the protocol --------------------------------
    // Subscribe to the cluster event bus, script a node kill, watch the
    // failure → recovery sequence stream in, then pull the postmortem
    // bundle the coordinator assembled — all through the same ASCII
    // protocol a GUI or `nc` session would use.
    say(
        &mut alice,
        "SUBMIT soak 2 POLICY restart LEVEL vm PROTO sync STORE replica:2",
    );
    std::thread::sleep(Duration::from_millis(100));
    say(&mut alice, "CHECKPOINT app3");
    std::thread::sleep(Duration::from_millis(600));
    say(&mut observer, "EVENTS SUBSCRIBE");
    // Kill a node hosting app3 — but not n0, where our sessions live.
    let victim = *cluster.config().apps[&starfish::AppId(3)]
        .placement
        .iter()
        .find(|n| n.0 != 0)
        .expect("app3 has a rank off n0");
    println!("-- killing {victim} (hosts an app3 rank) --");
    cluster.crash_node(victim);
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    'frames: while std::time::Instant::now() < deadline {
        for frame in observer.poll_frames() {
            println!("< {frame}");
            if frame.contains("recovery-complete") {
                break 'frames;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    say(&mut observer, "EVENTS"); // pull form: tail + drop accounting
    say(&mut observer, "POSTMORTEM app3"); // the full JSON bundle
    say(&mut observer, "HEALTH"); // the dead node shows as such
    say(&mut alice, "DELETE app3");
    std::thread::sleep(Duration::from_millis(100));

    say(&mut alice, "DELETE app1");
    std::thread::sleep(Duration::from_millis(100));
    say(&mut alice, "APPS");
    say(&mut alice, "LOGOUT");
    println!("\n(the Java GUI of the paper is a thin veneer over exactly this protocol)");
    Ok(())
}
