//! Watch a recovery unfold on the cluster event bus, then read the
//! postmortem bundle the coordinator assembled.
//!
//! ```text
//! cargo run --example recovery_watch
//! ```
//!
//! A 3-node cluster runs a diskless-checkpointing job (`replica:2`); we
//! subscribe to the event bus, kill the node hosting rank 1, and stream the
//! failure → recovery event sequence live. When the recovery completes, the
//! daemon's forensics module has already written a self-contained JSON
//! bundle (event sequence, per-phase timings, rollback depth, trace slice,
//! metric deltas) — the same bundle `POSTMORTEM app1` serves over the
//! management protocol.

use std::time::Duration;

use starfish::{CkptValue, Cluster, Result, SubmitOpts};

fn main() -> Result<()> {
    let cluster = Cluster::builder()
        .nodes(3)
        .heartbeat(Duration::from_millis(25), Duration::from_millis(100))
        .build()?;

    // An iterative app that checkpoints every 3 iterations; its state
    // (the iteration counter) survives the rollback.
    cluster.register_app("it", |ctx| {
        let mut iter = ctx
            .restored()
            .and_then(|v| v.field("iter").and_then(|f| f.as_int()))
            .unwrap_or(0);
        while iter < 80 {
            let state = CkptValue::record(vec![("iter", CkptValue::Int(iter))]);
            if iter % 10 == 0 && iter > 0 {
                ctx.checkpoint(&state)?;
            } else {
                ctx.safepoint(&state)?;
            }
            std::thread::sleep(Duration::from_millis(8));
            ctx.barrier()?;
            iter += 1;
        }
        Ok(())
    });

    // Follow the bus from the live edge: everything after this line streams.
    let mut cursor = cluster.events().subscribe();
    let app = cluster.submit("it", 3, SubmitOpts::default().replica(2))?;

    // Watch the bus until a checkpoint round commits, then kill the node
    // hosting rank 1 — the rollback will restore from that committed line.
    let warmup = std::time::Instant::now() + Duration::from_secs(30);
    'warm: while std::time::Instant::now() < warmup {
        for ev in cursor.poll().events {
            println!("  {}", ev.summary());
            if matches!(ev.kind, starfish_events::EventKind::CkptCommit { .. }) {
                break 'warm;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim = cluster.config().apps[&app].placement[1];
    println!("killing {victim} (hosts rank 1)...\n");
    cluster.crash_node(victim);

    // Stream events until the recovery completes (or the app finishes).
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    'watch: while std::time::Instant::now() < deadline {
        let poll = cursor.poll();
        if poll.missed > 0 {
            println!("! missed {} events (bus wrapped)", poll.missed);
        }
        for ev in &poll.events {
            println!("  {}", ev.summary());
            if matches!(ev.kind, starfish_events::EventKind::RecoveryComplete { .. }) {
                break 'watch;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    cluster.wait_app_done(app, Duration::from_secs(90))?;

    // The forensics bundle: what failed, how fast we noticed, how far we
    // rolled back, and what it cost.
    let pm = cluster
        .postmortem(app)
        .expect("recovery completed, bundle must exist");
    println!("\npostmortem for {} (epoch {}):", pm.app, pm.epoch);
    println!("  trigger:  {}", pm.trigger);
    println!("  backend:  {}", pm.store_backend);
    for p in &pm.phases {
        println!("  phase:    {:<28} {:>12} ns  [{}]", p.name, p.ns, p.domain);
    }
    println!(
        "  rollback: line={:?} depth={} vt-ns, {} messages discarded",
        pm.rollback.line, pm.rollback.depth_vt_ns, pm.rollback.messages_lost
    );
    println!("  events:   {} in bundle window", pm.events.len());
    println!(
        "\n(full JSON, as served by `POSTMORTEM app1`, is {} bytes; bundles land in target/postmortems/)",
        pm.to_json().len()
    );
    Ok(())
}
