//! Fault-tolerant 1-D Jacobi heat diffusion — the paper's flagship use case:
//! a long-running iterative MPI solver that survives a node crash by
//! rolling back to its last coordinated checkpoint (paper §3.2.2,
//! "Starfish can automatically restart the application from the last
//! checkpoint, or recovery line").
//!
//! ```text
//! cargo run --example fault_tolerant_jacobi
//! ```
//!
//! The program:
//! 1. runs the solver once failure-free and records the answer;
//! 2. runs it again with stop-and-sync checkpoints every 10 iterations and
//!    a node crash injected mid-run;
//! 3. checks both answers agree bit-for-bit.

use std::time::Duration;

use starfish::{CkptValue, Cluster, FtPolicy, Rank, ReduceOp, Result, SubmitOpts};

const POINTS_PER_RANK: usize = 64;
const ITERS: i64 = 40;
const CKPT_EVERY: i64 = 10;

/// The solver: each rank owns a slice of the rod; halo cells are exchanged
/// with the neighbours every iteration; state (iteration counter + grid)
/// lives in the checkpointable record.
fn jacobi(ctx: &mut starfish::Ctx<'_>, checkpoints: bool) -> Result<()> {
    let me = ctx.rank();
    let n = ctx.size();

    let (mut iter, mut grid) = match ctx.restored() {
        Some(v) => {
            let iter = v.field("iter").and_then(|f| f.as_int()).unwrap_or(0);
            let grid = v
                .field("grid")
                .and_then(|f| f.as_float_array())
                .map(|s| s.to_vec())
                .unwrap_or_default();
            println!("[rank {me}] restored at iteration {iter}");
            (iter, grid)
        }
        None => {
            // Hot spot at the left end of rank 0's slice.
            let mut g = vec![0.0f64; POINTS_PER_RANK];
            if me.0 == 0 {
                g[0] = 100.0;
            }
            (0, g)
        }
    };

    while iter < ITERS {
        let state = CkptValue::record(vec![
            ("iter", CkptValue::Int(iter)),
            ("grid", CkptValue::FloatArray(grid.clone())),
        ]);
        if checkpoints && iter % CKPT_EVERY == 0 && iter > 0 {
            // Collective, user-initiated, coordinated checkpoint.
            let dt = ctx.checkpoint(&state)?;
            if me.0 == 0 {
                println!("[rank 0] checkpoint at iteration {iter} took {dt} (virtual)");
            }
        } else {
            ctx.safepoint(&state)?;
        }

        // Halo exchange with the neighbours.
        let left = me.0.checked_sub(1).map(Rank);
        let right = if me.0 + 1 < n {
            Some(Rank(me.0 + 1))
        } else {
            None
        };
        if let Some(l) = left {
            ctx.send(l, 10, &grid[0].to_be_bytes())?;
        }
        if let Some(r) = right {
            ctx.send(r, 11, &grid[POINTS_PER_RANK - 1].to_be_bytes())?;
        }
        let halo_l = match left {
            Some(l) => {
                let m = ctx.recv(Some(l), Some(11))?;
                f64::from_be_bytes(m.data[..8].try_into().unwrap())
            }
            None => grid[0],
        };
        let halo_r = match right {
            Some(r) => {
                let m = ctx.recv(Some(r), Some(10))?;
                f64::from_be_bytes(m.data[..8].try_into().unwrap())
            }
            None => grid[POINTS_PER_RANK - 1],
        };

        // Jacobi update.
        let mut next = grid.clone();
        for i in 0..POINTS_PER_RANK {
            let l = if i == 0 { halo_l } else { grid[i - 1] };
            let r = if i == POINTS_PER_RANK - 1 {
                halo_r
            } else {
                grid[i + 1]
            };
            next[i] = 0.25 * l + 0.5 * grid[i] + 0.25 * r;
        }
        grid = next;
        iter += 1;
        // Model ~2 ms of compute per iteration on the P-II (virtual), plus
        // enough real time for the injected crash to land mid-run.
        ctx.advance(starfish::VirtualTime::from_millis(2));
        std::thread::sleep(Duration::from_millis(10));
    }

    // Global heat total (conserved-ish) + own slice as the result.
    let total = ctx.allreduce_f64(&[grid.iter().sum::<f64>()], ReduceOp::Sum)?;
    ctx.publish(CkptValue::record(vec![
        ("total", CkptValue::Float(total[0])),
        ("grid", CkptValue::FloatArray(grid)),
    ]));
    Ok(())
}

fn run_once(crash: bool) -> Result<(f64, Vec<f64>)> {
    let cluster = Cluster::builder().nodes(3).network_bip().build()?;
    let with_ckpt = crash;
    cluster.register_app("jacobi", move |ctx| jacobi(ctx, with_ckpt));
    let app = cluster.submit("jacobi", 3, SubmitOpts::default().policy(FtPolicy::Restart))?;

    if crash {
        // Wait for the first checkpoint to commit, then kill the node
        // hosting rank 1.
        let ranks: Vec<Rank> = (0..3).map(Rank).collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while cluster.store().latest_common_index(app, &ranks) < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "no checkpoint appeared"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let victim = cluster.config().apps[&app].placement[1];
        println!(">>> crashing node {victim} (hosts rank 1) <<<");
        cluster.crash_node(victim);
    }

    cluster.wait_app_done(app, Duration::from_secs(120))?;
    let out = cluster.outputs(app, Rank(0));
    let rec = out.last().expect("rank 0 published its slice");
    let total = rec.field("total").and_then(|f| f.as_float()).unwrap();
    let grid = rec
        .field("grid")
        .and_then(|f| f.as_float_array())
        .unwrap()
        .to_vec();
    Ok((total, grid))
}

fn main() -> Result<()> {
    println!("=== failure-free run ===");
    let (t0, g0) = run_once(false)?;
    println!("total heat: {t0:.9}");

    println!("\n=== run with checkpoints + injected crash ===");
    let (t1, g1) = run_once(true)?;
    println!("total heat: {t1:.9}");

    assert_eq!(t0.to_bits(), t1.to_bits(), "totals must match bit-for-bit");
    assert_eq!(g0, g1, "rank-0 slices must match");
    println!("\nresult after crash + rollback is IDENTICAL to the failure-free run ✓");
    Ok(())
}
