//! Heterogeneous checkpoint migration (paper §4, Table 2): a process
//! checkpointed on a little-endian 32-bit Linux box restarts on a
//! big-endian SunOS machine — and on a 64-bit Alpha — with the image
//! converted at restore time. A native-level image, by contrast, refuses to
//! cross machine types.
//!
//! ```text
//! cargo run --example heterogeneous_migration
//! ```

use std::time::Duration;

use starfish::{
    CkptValue, Cluster, Endianness, FtPolicy, LevelKind, Rank, Result, SubmitOpts, MACHINES,
};

fn main() -> Result<()> {
    // Table 2 machines: index 0 = i686 Linux (LE, 32-bit),
    // 1 = Sun Ultra Enterprise (BE, 32-bit), 5 = Alpha (LE, 64-bit).
    let cluster = Cluster::builder().node_archs(&[0, 1, 5]).build()?;
    for (i, m) in [0usize, 1, 5].iter().enumerate() {
        println!("node n{i}: {}", MACHINES[*m]);
    }

    cluster.register_app("wanderer", |ctx| {
        let me = ctx.rank();
        let (mut phase, data) = match ctx.restored() {
            Some(v) => {
                let phase = v.field("phase").and_then(|f| f.as_int()).unwrap_or(0);
                let data = v
                    .field("data")
                    .and_then(|f| f.as_int_array())
                    .map(|s| s.to_vec())
                    .unwrap_or_default();
                println!("[rank {me}] restored at phase {phase} on [{}]", ctx.arch());
                (phase, data)
            }
            None => {
                println!("[rank {me}] fresh start on [{}]", ctx.arch());
                (0, vec![-7, 0, 2_000_000_000, 42])
            }
        };
        while phase < 4 {
            let state = CkptValue::record(vec![
                ("phase", CkptValue::Int(phase)),
                ("data", CkptValue::IntArray(data.clone())),
                ("pi", CkptValue::Float(std::f64::consts::PI)),
                ("label", CkptValue::Str("survives byte-swapping".into())),
            ]);
            if phase == 2 {
                ctx.checkpoint(&state)?;
            } else {
                ctx.safepoint(&state)?;
            }
            phase += 1;
            std::thread::sleep(Duration::from_millis(15));
        }
        // Verify the data came through every conversion untouched.
        assert_eq!(data, vec![-7, 0, 2_000_000_000, 42]);
        ctx.publish(CkptValue::record(vec![
            (
                "final_arch_is_big_endian",
                CkptValue::Bool(ctx.arch().endian == Endianness::Big),
            ),
            ("data", CkptValue::IntArray(data)),
        ]));
        Ok(())
    });

    // One rank, VM-level images, automatic restart.
    let app = cluster.submit(
        "wanderer",
        1,
        SubmitOpts::default()
            .level(LevelKind::Vm)
            .policy(FtPolicy::Restart),
    )?;

    // Wait for the phase-2 checkpoint, then crash the hosting node: the
    // daemon restarts the process on a machine with a different
    // representation, converting the image.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while cluster.store().latest_index(app, Rank(0)) < 1 {
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(5));
    }
    let home = cluster.config().apps[&app].placement[0];
    println!(">>> crashing node {home}; the image must migrate across architectures <<<");
    cluster.crash_node(home);

    cluster.wait_app_done(app, Duration::from_secs(60))?;
    let new_home = cluster.config().apps[&app].placement[0];
    println!(
        "rank 0 migrated {home} -> {new_home}; epoch {}",
        cluster.config().apps[&app].epoch
    );
    assert_ne!(home, new_home);
    let out = cluster.outputs(app, Rank(0));
    println!("result after migration: {}", out.last().unwrap());

    // The same image object demonstrates the Table 2 matrix directly:
    let img = cluster.store().latest(app, Rank(0)).unwrap();
    println!("\nTable 2 restore matrix for the stored image:");
    for dst in MACHINES {
        match img.restore_state(dst) {
            Ok((_, rep)) => println!(
                "  -> {dst}: OK (swapped={}, widened={}, narrowed={})",
                rep.byte_swapped, rep.word_widened, rep.word_narrowed
            ),
            Err(e) => println!("  -> {dst}: {e}"),
        }
    }

    // Native images are architecture-locked (paper §4).
    println!("\nnative-level counter-demonstration:");
    cluster.register_app("homebody", |ctx| {
        ctx.checkpoint(&CkptValue::Int(1))?;
        Ok(())
    });
    let app2 = cluster.submit(
        "homebody",
        1,
        SubmitOpts::default().level(LevelKind::Native),
    )?;
    cluster.wait_app_done(app2, Duration::from_secs(60))?;
    let nat = cluster.store().latest(app2, Rank(0)).unwrap();
    let here = nat.level.arch();
    for dst in MACHINES {
        let ok = nat.restore_state(dst).is_ok();
        println!(
            "  native image from [{here}] -> [{dst}]: {}",
            if ok { "OK" } else { "REFUSED" }
        );
    }
    Ok(())
}
