//! Minimal, offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the parking_lot API shape this
//! workspace uses: non-poisoning `lock()`/`read()`/`write()` that return
//! guards directly (a poisoned std lock is recovered transparently), and a
//! `Condvar` whose `wait`/`wait_for` take `&mut MutexGuard`.

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Mutual exclusion primitive; never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait_for`] can
/// temporarily take it out while blocking; it is always `Some` outside
/// that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Reader–writer lock; never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
    // parking_lot's notify_* return whether any thread was woken; we track
    // only "somebody is (possibly) waiting" coarsely for that bool.
    waiters: AtomicBool,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            waiters: AtomicBool::new(false),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        self.waiters.load(Ordering::Relaxed)
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        usize::from(self.waiters.swap(false, Ordering::Relaxed))
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.waiters.store(true, Ordering::Relaxed);
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.waiters.store(true, Ordering::Relaxed);
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(&*l.read(), &[1, 2]);
    }

    #[test]
    fn condvar_wait_for_notified() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        let mut timed_out = false;
        while !*g {
            timed_out = cv.wait_for(&mut g, Duration::from_secs(5)).timed_out();
            if timed_out {
                break;
            }
        }
        assert!(*g && !timed_out);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut g = lock.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
