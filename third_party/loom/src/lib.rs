//! Minimal, offline stand-in for `loom`.
//!
//! Real loom replaces `std::sync`/`std::thread` with instrumented versions
//! and runs the closure under **every** legal interleaving (bounded by its
//! preemption budget). This container has no loom, so the stand-in keeps
//! the API shape — tests are written against `loom::model`,
//! `loom::thread`, `loom::sync::*` — and runs the closure many times under
//! real threads with injected yields, a stress schedule rather than an
//! exhaustive one.
//!
//! The point of keeping the shape is that the tests upgrade for free: CI
//! images that carry the real crate can patch it in (`[patch.crates-io]`)
//! and the same sources become exhaustive. Assertions must therefore hold
//! under *every* interleaving, not just probable ones — write them as loom
//! tests, not as stress tests.

#![allow(clippy::all)]

/// Iterations per [`model`] call. Real loom explores exhaustively; the
/// stand-in samples this many schedules.
pub const MODEL_ITERS: usize = 200;

/// Run `f` repeatedly, each iteration a fresh "execution". Panics inside
/// `f` propagate (a failed assertion fails the test).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..MODEL_ITERS {
        f();
    }
}

pub mod thread {
    //! Instrumented-thread stand-ins over `std::thread`.

    pub use std::thread::yield_now;

    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawn with an extra yield so sibling threads interleave more often
    /// than the default eager schedule would allow.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle(std::thread::spawn(move || {
            std::thread::yield_now();
            f()
        }))
    }
}

pub mod sync {
    //! `loom::sync` stand-ins. Real loom's types track the happens-before
    //! graph; these are the std types (non-poisoning where the workspace
    //! expects parking_lot-style guards).

    pub use std::sync::Arc;

    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(
            &self,
        ) -> Result<
            std::sync::MutexGuard<'_, T>,
            std::sync::PoisonError<std::sync::MutexGuard<'_, T>>,
        > {
            self.0.lock()
        }
    }

    pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock(std::sync::RwLock::new(value))
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(
            &self,
        ) -> Result<
            std::sync::RwLockReadGuard<'_, T>,
            std::sync::PoisonError<std::sync::RwLockReadGuard<'_, T>>,
        > {
            self.0.read()
        }

        pub fn write(
            &self,
        ) -> Result<
            std::sync::RwLockWriteGuard<'_, T>,
            std::sync::PoisonError<std::sync::RwLockWriteGuard<'_, T>>,
        > {
            self.0.write()
        }
    }

    pub mod atomic {
        pub use std::sync::atomic::{
            AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_threads_join() {
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h2 = hits.clone();
        super::model(move || {
            let c = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let c2 = c.clone();
            let t = super::thread::spawn(move || {
                c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            t.join().unwrap();
            assert_eq!(c.load(std::sync::atomic::Ordering::SeqCst), 1);
            h2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(
            hits.load(std::sync::atomic::Ordering::SeqCst),
            super::MODEL_ITERS
        );
    }
}
