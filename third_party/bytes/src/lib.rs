//! Minimal, offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real API this workspace uses: [`Bytes`] is a
//! cheaply cloneable, sliceable, immutable byte buffer backed by an
//! `Arc<[u8]>`; [`BytesMut`] is a growable buffer that can be frozen into a
//! [`Bytes`]. Semantics match the real crate for the covered surface;
//! performance characteristics are close enough for this workspace (clone
//! and `slice` are O(1) and allocation-free).

#![allow(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(s),
            start: 0,
            end: s.len(),
        }
    }

    /// Copies `src` into a new `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Number of bytes contained.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer has length zero.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// View as a plain byte slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer, convertible into an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Converts into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::from(&b"head"[..]);
        m.extend_from_slice(b"-tail");
        let b = m.freeze();
        assert_eq!(&b[..], b"head-tail");
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(
            Bytes::from_static(b"abc"),
            Bytes::from(vec![b'a', b'b', b'c'])
        );
        assert!(Bytes::from_static(b"a") < Bytes::from_static(b"b"));
        assert_eq!(Bytes::from_static(b"xy"), *b"xy");
    }
}
