//! Value-generation strategies: the sampling core of the shim.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampling function over [`TestRng`].
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type; the result is cheaply cloneable.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy(Arc::new(move |rng| inner.sample(rng)))
    }

    /// Builds recursive structures: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for the next one. `depth`
    /// bounds nesting; the size/branch hints are accepted for
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current.clone()).boxed();
        }
        current
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// --- integer ranges ---------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- regex-subset string strategies ----------------------------------------

/// `&'static str` patterns act as string strategies for the regex subset
/// `UNIT{m,n}` / `UNIT{n}` / `UNIT`, where `UNIT` is `.` (printable ASCII),
/// a character class like `[a-z0-9_]`, or a literal character. Units may be
/// concatenated.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

struct CharSet(Vec<(char, char)>);

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .0
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        let mut k = rng.below(total);
        for &(lo, hi) in &self.0 {
            let w = hi as u64 - lo as u64 + 1;
            if k < w {
                return char::from_u32(lo as u32 + k as u32).expect("valid char");
            }
            k -= w;
        }
        unreachable!("pick within total weight")
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        // One unit: '.', '[class]' or a literal character.
        let set = match chars[i] {
            '.' => {
                i += 1;
                // Printable ASCII minus newline; enough for these tests and
                // safe through every codec/arch-conversion path.
                CharSet(vec![(' ', '~')])
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty char class in {pattern:?}");
                i = close + 1;
                CharSet(ranges)
            }
            c => {
                i += 1;
                CharSet(vec![(c, c)])
            }
        };
        // Optional {m,n} / {n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repetition min"),
                    n.trim().parse::<usize>().expect("repetition max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let len = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..len {
            out.push(set.pick(rng));
        }
    }
    out
}

// --- tuple strategies -------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u32..20).sample(&mut r);
            assert!((10..20).contains(&v));
            let w = (i32::MIN..=i32::MAX).sample(&mut r);
            let _ = w; // full range: any value is fine
            let z = (0u64..1 << 30).sample(&mut r);
            assert!(z < 1 << 30);
        }
    }

    #[test]
    fn string_patterns() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,6}".sample(&mut r);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = ".{0,12}".sample(&mut r);
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
        }
    }

    #[test]
    fn oneof_map_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum V {
            Leaf(u32),
            Node(Vec<V>),
        }
        fn depth(v: &V) -> usize {
            match v {
                V::Leaf(_) => 0,
                V::Node(vs) => 1 + vs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u32..10).prop_map(V::Leaf);
        let strat = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(V::Node)
        });
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.sample(&mut r);
            assert!(depth(&v) <= 3);
        }
    }
}
