//! Test-run configuration, error type and the deterministic RNG.

use std::fmt;

/// Configuration for a `proptest!` block; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable
    /// (same knob as upstream proptest — CI uses it to pin the budget).
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property; produced by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator: identical sequences on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test sampling.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
