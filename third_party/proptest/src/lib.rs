//! Minimal, offline stand-in for `proptest`.
//!
//! Covers the subset of the API this workspace uses: the `proptest!` test
//! macro (with optional `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()` for primitives, integer range
//! strategies, a small regex-subset string strategy (`"[a-z]{1,6}"`,
//! `".{0,32}"`), tuple strategies, `collection::vec`, `Just`,
//! `prop_oneof!`, `.prop_map(..)`, `.prop_recursive(..)` and boxed
//! strategies.
//!
//! Differences from real proptest: cases are sampled from a fixed
//! deterministic seed (reproducible across runs), and failing cases are
//! reported without shrinking.

#![allow(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` running `cases` sampled instantiations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    0x5EED_0BAD_F00D_u64 ^ ::std::line!() as u64,
                );
                for __case in 0..__cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        ::std::panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, __e);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident $args:tt $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name $args $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Uniformly picks one of the given strategies for every sample.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
