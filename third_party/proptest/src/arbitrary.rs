//! `any::<T>()` for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Debug, Clone, Default)]
pub struct AnyPrim<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Full bit-pattern coverage (like real proptest's widest f64
        // domain): finite values, infinities and NaNs all occur.
        // Consumers that need NaN-tolerant comparison already compare bits.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> AnyPrim<f64> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f32 {
    type Strategy = AnyPrim<f32>;
    fn arbitrary() -> AnyPrim<f32> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text valid for every codec path.
        char::from_u32(0x20 + (rng.below(0x5F)) as u32).expect("printable ascii")
    }
}

impl Arbitrary for char {
    type Strategy = AnyPrim<char>;
    fn arbitrary() -> AnyPrim<char> {
        AnyPrim(PhantomData)
    }
}
