//! Collection strategies (`vec`) and size ranges.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-lower, exclusive-upper bound on generated collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(0u8..10, 2..6);
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
