//! Minimal, offline stand-in for `crossbeam` (the `channel` part).
//!
//! Implements MPMC unbounded channels over `Mutex<VecDeque>` + `Condvar`
//! with crossbeam-compatible disconnect semantics, plus a polling
//! `select!` macro covering the arm shapes this workspace uses:
//!
//! ```text
//! select! {
//!     recv(rx) -> msg => { ... }      // block body, no comma
//!     recv(rx2) -> msg => expr,       // expr body with comma
//!     default(timeout) => { ... }     // optional, last
//! }
//! ```
//!
//! Limitation (vs. real crossbeam): arm bodies are expanded inside an
//! internal selection loop, so a bare `break`/`continue` in an arm body
//! would bind to that loop. Use `return`, labeled breaks, or inner loops
//! in bodies (as all current call sites do).

#![allow(clippy::all)]

pub mod channel;

/// Polling `select!` over channel receive arms; see the crate docs.
#[macro_export]
macro_rules! select {
    ($($tokens:tt)*) => {
        $crate::__select_internal!(@parse () ; $($tokens)*)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __select_internal {
    // --- parse: default arm (must be last) --------------------------------
    (@parse ($($arms:tt)*) ; default($t:expr) => $dbody:block $(,)?) => {
        $crate::__select_internal!(@emit ($($arms)*) (default ($t) ($dbody)))
    };
    (@parse ($($arms:tt)*) ; default($t:expr) => $dbody:expr $(,)?) => {
        $crate::__select_internal!(@emit ($($arms)*) (default ($t) ($dbody)))
    };
    // --- parse: recv arm, expr body with trailing comma -------------------
    (@parse ($($arms:tt)*) ; recv($rx:expr) -> $pat:pat => $body:expr , $($rest:tt)*) => {
        $crate::__select_internal!(@parse ($($arms)* { ($rx) ($pat) ($body) }) ; $($rest)*)
    };
    // --- parse: recv arm, block body, no comma ----------------------------
    (@parse ($($arms:tt)*) ; recv($rx:expr) -> $pat:pat => $body:block $($rest:tt)*) => {
        $crate::__select_internal!(@parse ($($arms)* { ($rx) ($pat) ($body) }) ; $($rest)*)
    };
    // --- parse: recv arm, expr body, last ---------------------------------
    (@parse ($($arms:tt)*) ; recv($rx:expr) -> $pat:pat => $body:expr) => {
        $crate::__select_internal!(@parse ($($arms)* { ($rx) ($pat) ($body) }) ;)
    };
    // --- parse: end, no default -------------------------------------------
    (@parse ($($arms:tt)*) ;) => {
        $crate::__select_internal!(@emit ($($arms)*) (none))
    };
    // --- emit -------------------------------------------------------------
    (@emit ($({ ($rx:expr) ($pat:pat) ($body:expr) })*) (none)) => {{
        let __select_result;
        '__select: loop {
            $(
                match ($rx).try_recv_for_select() {
                    ::std::option::Option::Some(__select_msg) => {
                        let $pat = __select_msg;
                        __select_result = $body;
                        break '__select;
                    }
                    ::std::option::Option::None => {}
                }
            )*
            ::std::thread::sleep(::std::time::Duration::from_micros(200));
        }
        __select_result
    }};
    (@emit ($({ ($rx:expr) ($pat:pat) ($body:expr) })*) (default ($t:expr) ($dbody:expr))) => {{
        let __select_result;
        let __select_deadline = ::std::time::Instant::now() + $t;
        '__select: loop {
            $(
                match ($rx).try_recv_for_select() {
                    ::std::option::Option::Some(__select_msg) => {
                        let $pat = __select_msg;
                        __select_result = $body;
                        break '__select;
                    }
                    ::std::option::Option::None => {}
                }
            )*
            if ::std::time::Instant::now() >= __select_deadline {
                __select_result = $dbody;
                break '__select;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(200));
        }
        __select_result
    }};
}
