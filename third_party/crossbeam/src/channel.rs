//! MPMC unbounded channel with crossbeam-compatible semantics for the API
//! subset this workspace uses.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub use crate::select;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    avail: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        avail: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// A receiver that is never ready and never disconnects (its sender is
/// intentionally leaked).
pub fn never<T>() -> Receiver<T> {
    let (tx, rx) = unbounded();
    std::mem::forget(tx);
    rx
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> Sender<T> {
    /// Sends a message; fails only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(msg));
        }
        self.shared.lock().push_back(msg);
        self.shared.avail.notify_one();
        Ok(())
    }

    /// Number of messages currently queued in the channel.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake blocked receivers so they observe the
            // disconnect.
            self.shared.avail.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    fn disconnected(&self) -> bool {
        self.shared.senders.load(Ordering::SeqCst) == 0
    }

    /// Blocks until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.disconnected() {
                return Err(RecvError);
            }
            q = self.shared.avail.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .avail
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.lock();
        if let Some(msg) = q.pop_front() {
            return Ok(msg);
        }
        if self.disconnected() {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Selection probe used by the `select!` macro: `Some(Ok(v))` when a
    /// message is ready, `Some(Err(RecvError))` when disconnected and
    /// drained, `None` when merely empty.
    #[doc(hidden)]
    pub fn try_recv_for_select(&self) -> Option<Result<T, RecvError>> {
        match self.try_recv() {
            Ok(v) => Some(Ok(v)),
            Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
            Err(TryRecvError::Empty) => None,
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn never_is_never_ready() {
        let rx = never::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.try_recv_for_select().is_none());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for i in 0..4 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..100 {
                    tx.send(i * 100 + j).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn select_macro_arm_shapes() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        #[allow(unused_assignments)]
        let mut hit = 0;
        crate::select! {
            recv(rx_a) -> msg => {
                assert_eq!(msg, Ok(5));
                hit = 1;
            }
            recv(rx_b) -> msg => { let _ = msg; hit = 2; }
        }
        assert_eq!(hit, 1);

        // Expression arms with commas, plus a default timeout.
        let fired = crate::select! {
            recv(rx_a) -> _msg => "recv",
            default(Duration::from_millis(5)) => "default",
        };
        assert_eq!(fired, "default");
    }
}
