//! Minimal, offline stand-in for `criterion`.
//!
//! Runs each benchmark for a short fixed budget, reports mean wall-clock
//! time per iteration (plus throughput when configured) on stdout. No
//! statistical analysis, plotting or baseline storage — just enough to run
//! `cargo bench` style harnesses offline with the real criterion API shape.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Benchmark driver handed to the functions in `criterion_group!`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, f);
        self
    }
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How much setup output to batch per measured call in `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    MediumInput,
    LargeInput,
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Measurement context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back for the requested iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F>(id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration pass.
    let mut b = Bencher {
        iters: WARMUP_ITERS,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = (b.elapsed / WARMUP_ITERS as u32).max(Duration::from_nanos(1));
    let iters = (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            " ({:.1} MiB/s)",
            n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / (mean_ns / 1e9)),
    });
    println!(
        "{id:40} {:>12.1} ns/iter over {iters} iters{}",
        mean_ns,
        rate.unwrap_or_default()
    );
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` invokes harness-less benches with
            // `--test`; skip the heavy run there like real criterion does.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
